// Persistent worker pool for the parallel execution subsystem. One pool
// is created per ParallelStreamContext and reused across every stream
// event, so the per-event cost is a wake-up + barrier, not thread
// creation. The only primitive is a blocking ParallelFor: fan a loop body
// out over the workers plus the calling thread, wait for every claimed
// index to finish, and rethrow the first exception on the caller. With
// `num_threads <= 1` no workers are spawned at all and ParallelFor runs
// the body inline on the caller thread (the serial fast path — contexts
// constructed with one thread behave exactly like serial code).
#ifndef TCSM_EXEC_THREAD_POOL_H_
#define TCSM_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcsm {

class ThreadPool {
 public:
  /// `num_threads` is the total parallelism including the thread that
  /// calls ParallelFor: `num_threads - 1` workers are spawned, none for
  /// `num_threads <= 1`.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the caller thread (>= 1).
  size_t num_threads() const { return workers_.size() + 1; }
  /// True when worker threads exist; false in the inline bypass mode.
  bool pooled() const { return !workers_.empty(); }

  /// Runs body(0) ... body(n-1), indices claimed dynamically by the
  /// workers and the calling thread, and returns once every claimed index
  /// has completed (a full completion barrier — no body is still running
  /// when this returns). If a body throws, indices not yet claimed may be
  /// skipped and the first exception is rethrown to the caller after the
  /// barrier. Without workers — and for single-index jobs, where waking
  /// the pool buys nothing — the loop runs inline on the caller thread
  /// (exceptions then propagate directly). Not reentrant: a body must not
  /// call ParallelFor on the same pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Runs a `steps`-deep pipeline as ONE pool job: for every step k in
  /// order, body(k, 0) ... body(k, n-1) are claimed dynamically by the
  /// workers and the caller; once every participant finished its step-k
  /// claims, the caller alone runs settle(k), and only then does step k+1
  /// open. Equivalent to `steps` ParallelFor calls with settle(k) between
  /// them, but with a single pool wake-up and lightweight (spin/yield)
  /// step fences instead of a condition-variable barrier per step — the
  /// per-event fan-out cost that micro-batching amortizes (DESIGN.md §9).
  ///
  /// Ordering guarantees: all body(k, ·) effects are visible to settle(k),
  /// and all settle(k) effects are visible to every body(k+1, ·). If a
  /// body or settle throws, the remaining bodies and settles are skipped
  /// (steps still drain) and the first exception is rethrown after the
  /// job completes. Without workers — or with n <= 1, where there is
  /// nothing to fan out — the pipeline runs inline on the caller with
  /// direct exception propagation. Not reentrant.
  void PipelineFor(size_t steps, size_t n,
                   const std::function<void(size_t, size_t)>& body,
                   const std::function<void(size_t)>& settle);

 private:
  void WorkerLoop();
  /// Claims and runs indices until the job is exhausted; captures the
  /// first exception and cancels the remaining indices.
  void RunShard(const std::function<void(size_t)>& body, size_t n);
  /// Worker half of PipelineFor: per step, wait for the step to open,
  /// claim indices from the step's slice of next_, then arrive.
  void RunPipelineShard(const std::function<void(size_t, size_t)>& body,
                        size_t steps, size_t n);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // new job posted, or stopping
  std::condition_variable done_cv_;  // a worker finished its shard
  // Guarded by mu_: the current job, its generation stamp, and how many
  // workers still have to finish their shard of it.
  const std::function<void(size_t)>* body_ = nullptr;
  size_t job_n_ = 0;
  uint64_t generation_ = 0;
  size_t active_workers_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;

  // Pipelined job state (PipelineFor). pipe_body_ doubles as the job-kind
  // dispatch in WorkerLoop; at most one of body_/pipe_body_ is non-null.
  const std::function<void(size_t, size_t)>* pipe_body_ = nullptr;
  size_t pipe_steps_ = 0;
  /// Step k's bodies may run once pipe_open_ > k (release-published by
  /// the caller after settle(k-1), so settle effects are visible).
  std::atomic<size_t> pipe_open_{0};
  /// Total step arrivals; step k is fully drained once this reaches
  /// participants * (k + 1) (release-published by each participant after
  /// its last step-k body, so body effects are visible to settle).
  std::atomic<size_t> pipe_arrived_{0};
  /// Set on the first exception: remaining bodies/settles are skipped
  /// while the steps still drain, so every participant exits cleanly.
  std::atomic<bool> pipe_abort_{false};

  /// Next unclaimed loop index of the current job. PipelineFor slices it
  /// per step: step k claims from [k*n, (k+1)*n), and the caller resets
  /// the counter to the next slice's base once the step has drained.
  std::atomic<size_t> next_{0};
};

}  // namespace tcsm

#endif  // TCSM_EXEC_THREAD_POOL_H_
