#include "exec/result_sink.h"

namespace tcsm {

void BufferedMatchSink::Drain() {
  if (buffer_.empty()) return;
  if (downstream_ != nullptr) {
    for (const Record& r : buffer_) {
      downstream_->OnMatch(r.embedding, r.kind, r.multiplicity);
    }
  }
  buffer_.clear();
}

}  // namespace tcsm
