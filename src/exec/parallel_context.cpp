#include "exec/parallel_context.h"

#include "obs/stage_timer.h"

namespace tcsm {

ParallelStreamContext::ParallelStreamContext(const GraphSchema& schema,
                                             size_t num_threads)
    : SharedStreamContext(schema), pool_(num_threads) {}

void ParallelStreamContext::SyncSinks() {
  const std::vector<ContinuousEngine*>& attached = engines();
  while (buffers_.size() < attached.size()) {
    buffers_.push_back(std::make_unique<BufferedMatchSink>());
  }
  for (size_t i = 0; i < attached.size(); ++i) {
    MatchSink* current = attached[i]->sink();
    if (current == buffers_[i].get()) continue;
    // The caller (re)installed a sink since the last event: buffer in
    // front of it. A null sink stays null — the engine then only counts,
    // exactly as in serial execution.
    buffers_[i]->set_downstream(current);
    if (current != nullptr) attached[i]->set_sink(buffers_[i].get());
  }
}

void ParallelStreamContext::RunPhase(
    void (ContinuousEngine::*hook)(const TemporalEdge&),
    const TemporalEdge& ed) {
  const std::vector<ContinuousEngine*>& attached = engines();
  try {
    pool_.ParallelFor(attached.size(),
                      [&](size_t i) { (attached[i]->*hook)(ed); });
  } catch (...) {
    // A failed phase poisons the event: engines that did complete must
    // not have their buffered matches replayed under a later event's
    // drain, so discard them before propagating. (Engine index state may
    // be inconsistent after an exception either way; the context is not
    // fit to continue the same stream.)
    for (const std::unique_ptr<BufferedMatchSink>& buffer : buffers_) {
      buffer->Discard();
    }
    throw;
  }
}

void ParallelStreamContext::DrainSinks() {
  for (const std::unique_ptr<BufferedMatchSink>& buffer : buffers_) {
    buffer->Drain();
  }
}

void ParallelStreamContext::OnEdgeArrivalBatch(const TemporalEdge* edges,
                                               size_t count) {
  const std::vector<ContinuousEngine*>& attached = engines();
  if (!pool_.pooled() || count <= 1 || attached.empty()) {
    SharedStreamContext::OnEdgeArrivalBatch(edges, count);
    return;
  }
  SyncSinks();
  batch_scratch_.clear();
  batch_scratch_.reserve(count);
  batch_scratch_.push_back(ApplyArrival(edges[0]));
  const StageMetrics* const stages = stage_metrics();
  TraceWriter* const trace = trace_writer();
  // Step boundaries are only observable in the settle callback (the
  // driver participates in the pipeline job itself), so a StepObserver
  // closes each fan-out span there; the drain gets its own span.
  StepObserver steps(stages != nullptr ? stages->pipeline_step_ns : nullptr,
                     trace, "pipeline");
  try {
    // Step k fans edge k out to the engines; the inter-step settle drains
    // the buffers (attach order) and applies the NEXT arrival, so its
    // insertion is published to the step-(k+1) bodies by the step fence.
    pool_.PipelineFor(
        count, attached.size(),
        [&](size_t k, size_t i) {
          attached[i]->OnEdgeInserted(batch_scratch_[k]);
        },
        [&](size_t k) {
          steps.Step("insert_fanout", "edge", k);
          {
            const ScopedStage drain(
                stages != nullptr ? stages->sink_drain_ns : nullptr, trace,
                "drain", "pipeline");
            DrainSinks();
          }
          if (k + 1 < count) batch_scratch_.push_back(ApplyArrival(edges[k + 1]));
          steps.Restart();
        });
  } catch (...) {
    for (const std::unique_ptr<BufferedMatchSink>& buffer : buffers_) {
      buffer->Discard();
    }
    throw;
  }
}

void ParallelStreamContext::OnEdgeExpiryBatch(const TemporalEdge* edges,
                                              size_t count) {
  const std::vector<ContinuousEngine*>& attached = engines();
  if (!pool_.pooled() || count <= 1 || attached.empty()) {
    SharedStreamContext::OnEdgeExpiryBatch(edges, count);
    return;
  }
  SyncSinks();
  batch_scratch_.clear();
  batch_scratch_.reserve(count);
  batch_scratch_.push_back(CaptureExpiry(edges[0]));
  const StageMetrics* const stages = stage_metrics();
  TraceWriter* const trace = trace_writer();
  StepObserver steps(stages != nullptr ? stages->pipeline_step_ns : nullptr,
                     trace, "pipeline");
  try {
    // Two pipeline steps per edge: even steps run the expiring phase
    // against the pre-deletion graph, whose settle drains and THEN
    // removes the edge; odd steps run the removed phase, whose settle
    // drains and captures the next expiring edge.
    pool_.PipelineFor(
        2 * count, attached.size(),
        [&](size_t k, size_t i) {
          if (k % 2 == 0) {
            attached[i]->OnEdgeExpiring(batch_scratch_[k / 2]);
          } else {
            attached[i]->OnEdgeRemoved(batch_scratch_[k / 2]);
          }
        },
        [&](size_t k) {
          steps.Step(k % 2 == 0 ? "expiring_fanout" : "removed_fanout",
                     "edge", k / 2);
          {
            const ScopedStage drain(
                stages != nullptr ? stages->sink_drain_ns : nullptr, trace,
                "drain", "pipeline");
            DrainSinks();
          }
          if (k % 2 == 0) {
            ApplyRemoval(batch_scratch_[k / 2].id);
          } else if (k / 2 + 1 < count) {
            batch_scratch_.push_back(CaptureExpiry(edges[k / 2 + 1]));
          }
          steps.Restart();
        });
  } catch (...) {
    for (const std::unique_ptr<BufferedMatchSink>& buffer : buffers_) {
      buffer->Discard();
    }
    throw;
  }
}

void ParallelStreamContext::NotifyInserted(const TemporalEdge& ed) {
  if (!pool_.pooled()) {
    SharedStreamContext::NotifyInserted(ed);
    return;
  }
  const StageMetrics* const stages = stage_metrics();
  SyncSinks();
  {
    const ScopedStage span(
        stages != nullptr ? stages->pipeline_step_ns : nullptr,
        trace_writer(), "insert_fanout", "pipeline");
    RunPhase(&ContinuousEngine::OnEdgeInserted, ed);
  }
  DrainSinks();
}

void ParallelStreamContext::NotifyExpiring(const TemporalEdge& ed) {
  if (!pool_.pooled()) {
    SharedStreamContext::NotifyExpiring(ed);
    return;
  }
  const StageMetrics* const stages = stage_metrics();
  SyncSinks();
  {
    const ScopedStage span(
        stages != nullptr ? stages->pipeline_step_ns : nullptr,
        trace_writer(), "expiring_fanout", "pipeline");
    RunPhase(&ContinuousEngine::OnEdgeExpiring, ed);
  }
  // Draining here (before the context removes the edge) keeps even the
  // inter-phase sink timing identical to serial execution.
  DrainSinks();
}

void ParallelStreamContext::NotifyRemoved(const TemporalEdge& ed) {
  if (!pool_.pooled()) {
    SharedStreamContext::NotifyRemoved(ed);
    return;
  }
  const StageMetrics* const stages = stage_metrics();
  {
    const ScopedStage span(
        stages != nullptr ? stages->pipeline_step_ns : nullptr,
        trace_writer(), "removed_fanout", "pipeline");
    RunPhase(&ContinuousEngine::OnEdgeRemoved, ed);
  }
  DrainSinks();
}

}  // namespace tcsm
