#include "exec/thread_pool.h"

namespace tcsm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;
  workers_.reserve(num_threads - 1);
  try {
    for (size_t t = 0; t + 1 < num_threads; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    // Thread exhaustion (std::system_error): shut down the workers that
    // did start, then surface the error as a catchable exception instead
    // of letting ~vector terminate on joinable threads.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunShard(const std::function<void(size_t)>& body, size_t n) {
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Cancel the indices nobody claimed yet; shards already running
      // finish their current body first (the barrier still holds).
      next_.store(n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* body = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      n = job_n_;
    }
    RunShard(*body, n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline bypass: with no workers, or a single index that one thread
    // would claim anyway, waking the pool buys nothing — the body runs
    // on the caller with no pool machinery at all.
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  RunShard(body, n);  // the caller thread claims indices too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  body_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace tcsm
