#include "exec/thread_pool.h"

#include <chrono>

namespace tcsm {

namespace {

/// Step-fence wait: brief spin, then yield, then sleep. The pipeline
/// fences are expected to resolve in microseconds, but on an
/// oversubscribed machine (more participants than cores) a pure spin
/// would starve the very thread being waited on.
inline void PipelineBackoff(uint32_t* spins) {
  const uint32_t s = ++*spins;
  if (s < 64) return;
  if (s < 4096) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;
  workers_.reserve(num_threads - 1);
  try {
    for (size_t t = 0; t + 1 < num_threads; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    // Thread exhaustion (std::system_error): shut down the workers that
    // did start, then surface the error as a catchable exception instead
    // of letting ~vector terminate on joinable threads.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunShard(const std::function<void(size_t)>& body, size_t n) {
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Cancel the indices nobody claimed yet; shards already running
      // finish their current body first (the barrier still holds).
      next_.store(n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::RunPipelineShard(
    const std::function<void(size_t, size_t)>& body, size_t steps, size_t n) {
  for (size_t k = 0; k < steps; ++k) {
    uint32_t spins = 0;
    while (pipe_open_.load(std::memory_order_acquire) <= k) {
      PipelineBackoff(&spins);
    }
    for (;;) {
      const size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
      if (idx >= (k + 1) * n) break;
      if (pipe_abort_.load(std::memory_order_relaxed)) continue;
      try {
        body(k, idx - k * n);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        pipe_abort_.store(true, std::memory_order_relaxed);
      }
    }
    pipe_arrived_.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* body = nullptr;
    const std::function<void(size_t, size_t)>* pipe_body = nullptr;
    size_t n = 0;
    size_t steps = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      pipe_body = pipe_body_;
      n = job_n_;
      steps = pipe_steps_;
    }
    if (pipe_body != nullptr) {
      RunPipelineShard(*pipe_body, steps, n);
    } else {
      RunShard(*body, n);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline bypass: with no workers, or a single index that one thread
    // would claim anyway, waking the pool buys nothing — the body runs
    // on the caller with no pool machinery at all.
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    pipe_body_ = nullptr;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  RunShard(body, n);  // the caller thread claims indices too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  body_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::PipelineFor(size_t steps, size_t n,
                             const std::function<void(size_t, size_t)>& body,
                             const std::function<void(size_t)>& settle) {
  if (steps == 0) return;
  if (workers_.empty() || n <= 1) {
    // Inline bypass: no workers, or nothing to fan out per step.
    for (size_t k = 0; k < steps; ++k) {
      for (size_t i = 0; i < n; ++i) body(k, i);
      settle(k);
    }
    return;
  }
  const size_t participants = workers_.size() + 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = nullptr;
    pipe_body_ = &body;
    pipe_steps_ = steps;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    pipe_arrived_.store(0, std::memory_order_relaxed);
    pipe_abort_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_workers_ = workers_.size();
    ++generation_;
    pipe_open_.store(1, std::memory_order_release);
  }
  work_cv_.notify_all();
  for (size_t k = 0; k < steps; ++k) {
    // Claim step-k indices alongside the workers.
    for (;;) {
      const size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
      if (idx >= (k + 1) * n) break;
      if (pipe_abort_.load(std::memory_order_relaxed)) continue;
      try {
        body(k, idx - k * n);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        pipe_abort_.store(true, std::memory_order_relaxed);
      }
    }
    pipe_arrived_.fetch_add(1, std::memory_order_release);
    // Step fence: every participant has drained its step-k claims (their
    // release arrivals make the body effects visible here).
    uint32_t spins = 0;
    while (pipe_arrived_.load(std::memory_order_acquire) <
           participants * (k + 1)) {
      PipelineBackoff(&spins);
    }
    if (!pipe_abort_.load(std::memory_order_relaxed)) {
      try {
        settle(k);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
        pipe_abort_.store(true, std::memory_order_relaxed);
      }
    }
    if (k + 1 < steps) {
      // Reset the claim counter to the next slice (safe: no participant
      // touches next_ between its step-k arrival and step k+1 opening),
      // then open step k+1; the release publishes settle(k)'s effects.
      next_.store((k + 1) * n, std::memory_order_relaxed);
      pipe_open_.store(k + 2, std::memory_order_release);
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  pipe_body_ = nullptr;
  pipe_open_.store(0, std::memory_order_relaxed);
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace tcsm
