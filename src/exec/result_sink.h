// Per-engine result buffering for parallel notification phases. While a
// ParallelStreamContext fans an event out across workers, every engine
// reports into its own BufferedMatchSink — engine-private, so appends are
// lock-free by construction (exactly one worker runs a given engine's
// notification per phase). At the phase barrier the driver thread drains
// the buffers in engine-attach order, forwarding each record to the sink
// the caller originally installed on the engine. Within one engine the
// buffer preserves production order, and the drain order equals the
// serial fan-out order, so the downstream sinks observe a match stream
// byte-identical to serial execution (DESIGN.md §6).
#ifndef TCSM_EXEC_RESULT_SINK_H_
#define TCSM_EXEC_RESULT_SINK_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"

namespace tcsm {

class BufferedMatchSink : public MatchSink {
 public:
  explicit BufferedMatchSink(MatchSink* downstream = nullptr)
      : downstream_(downstream) {}

  /// The caller-installed sink this buffer forwards to on Drain(). May be
  /// retargeted between events (never during a parallel phase).
  void set_downstream(MatchSink* downstream) { downstream_ = downstream; }
  MatchSink* downstream() const { return downstream_; }

  /// Mirrors the downstream verdict so an engine factors interchangeable
  /// parallel edges exactly as it would reporting straight to the
  /// downstream (a null downstream matches the null-sink serial path,
  /// which counts one representative with a multiplicity).
  bool wants_each_embedding() const override {
    return downstream_ != nullptr && downstream_->wants_each_embedding();
  }

  void OnMatch(const Embedding& embedding, MatchKind kind,
               uint64_t multiplicity) override {
    buffer_.push_back(Record{embedding, kind, multiplicity});
  }

  /// Forwards every buffered record downstream in production order and
  /// clears the buffer. Driver thread only, after the phase barrier.
  void Drain();

  /// Clears the buffer without forwarding — used when a phase failed and
  /// its partial results must not leak into a later event's drain.
  void Discard() { buffer_.clear(); }

  bool empty() const { return buffer_.empty(); }

 private:
  struct Record {
    Embedding embedding;
    MatchKind kind;
    uint64_t multiplicity;
  };

  MatchSink* downstream_;
  std::vector<Record> buffer_;
};

}  // namespace tcsm

#endif  // TCSM_EXEC_RESULT_SINK_H_
