// Sharded multi-query fan-out over the one shared sliding-window graph.
//
// A ParallelStreamContext is a SharedStreamContext whose notification
// fan-out runs on a worker pool instead of a loop: the graph mutation for
// an event is still applied exactly once on the driver thread (the
// two-phase expiry protocol of DESIGN.md §3 is unchanged), and then the
// per-engine OnEdgeInserted / OnEdgeExpiring / OnEdgeRemoved work — which
// PR 2 made embarrassingly parallel by turning engines into read-only
// views of a const graph — is sharded dynamically across the pool, with a
// full barrier at the end of each phase. In particular the barrier
// between OnEdgeExpiring and the graph removal guarantees every engine
// enumerated its dying embeddings against the pre-deletion state before
// the edge disappears.
//
// Determinism: during a phase each engine reports into a private
// BufferedMatchSink interposed in front of the sink the caller installed;
// at the end of the event the driver thread drains the buffers in
// engine-attach order. Each engine runs single-threaded per phase, so the
// resulting match stream — per query and globally — is byte-identical to
// serial execution regardless of the thread count or scheduling
// (DESIGN.md §6). Constructed with num_threads <= 1 the context spawns no
// workers and behaves exactly like its serial base class.
#ifndef TCSM_EXEC_PARALLEL_CONTEXT_H_
#define TCSM_EXEC_PARALLEL_CONTEXT_H_

#include <memory>
#include <vector>

#include "core/shared_context.h"
#include "exec/result_sink.h"
#include "exec/thread_pool.h"

namespace tcsm {

class ParallelStreamContext : public SharedStreamContext {
 public:
  ParallelStreamContext(const GraphSchema& schema, size_t num_threads);

  /// Total parallelism of the notification phases, including the driver
  /// thread; 1 means the serial bypass.
  size_t num_threads() const override { return pool_.num_threads(); }

  /// Micro-batch overrides (DESIGN.md §9): a batch of same-timestamp
  /// events runs as ONE pipelined pool job (ThreadPool::PipelineFor)
  /// instead of one-to-three condition-variable barriers per event. The
  /// event protocol is unchanged — each edge is applied on the driver
  /// thread, fanned out, and its buffers drained in attach order before
  /// the next edge of the batch mutates the graph — so the match stream
  /// stays byte-identical to serial execution. The one sanctioned
  /// deviation: sinks are re-synced once per batch rather than once per
  /// event (the batch boundary is the sink re-sync point).
  void OnEdgeArrivalBatch(const TemporalEdge* edges, size_t count) override;
  void OnEdgeExpiryBatch(const TemporalEdge* edges, size_t count) override;

 protected:
  void NotifyInserted(const TemporalEdge& ed) override;
  void NotifyExpiring(const TemporalEdge& ed) override;
  void NotifyRemoved(const TemporalEdge& ed) override;

 private:
  /// Interposes a BufferedMatchSink in front of every engine's current
  /// sink. Runs on the driver thread before each event's fan-out, so
  /// engines attached or re-sinked between events are picked up.
  void SyncSinks();
  /// Runs `hook` on every attached engine across the pool and blocks
  /// until all of them finished (the phase barrier).
  void RunPhase(void (ContinuousEngine::*hook)(const TemporalEdge&),
                const TemporalEdge& ed);
  /// Drains the per-engine buffers in attach order (serial match order).
  void DrainSinks();

  ThreadPool pool_;
  std::vector<std::unique_ptr<BufferedMatchSink>> buffers_;
  /// Canonical edge records of the in-flight batch. Reserved up front so
  /// the driver's settle-phase push_back never reallocates under the
  /// workers' concurrent reads of earlier elements.
  std::vector<TemporalEdge> batch_scratch_;
};

}  // namespace tcsm

#endif  // TCSM_EXEC_PARALLEL_CONTEXT_H_
